// Quickstart: run a 3x3 convolution with the Winograd algorithm on the
// CPU, compare it against the direct reference, and show the arithmetic
// saving that motivates the paper.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/conv"
	"repro/internal/tensor"
	"repro/internal/winograd"
)

func main() {
	// A ResNet-Conv3-like problem at a small batch.
	shape := tensor.Shape4{N: 8, C: 64, H: 28, W: 28}
	const filters = 64

	input := tensor.NewImage(tensor.NCHW, shape)
	input.FillRandom(1)
	filter := tensor.NewFilter(tensor.KCRS, tensor.FilterShape{K: filters, C: shape.C, R: 3, S: 3})
	filter.FillRandom(2)

	// Direct convolution: the correctness reference.
	t0 := time.Now()
	want, err := conv.DirectParallel(input, filter, conv.Params{Pad: 1})
	if err != nil {
		log.Fatal(err)
	}
	directTime := time.Since(t0)

	// Winograd F(2x2,3x3), the paper's fused algorithm, on the CPU.
	t0 = time.Now()
	got, err := winograd.Conv2D(input, filter, 1, winograd.Options{})
	if err != nil {
		log.Fatal(err)
	}
	winoTime := time.Since(t0)

	diff := tensor.MaxRelDiff(want, got.ToLayout(tensor.NCHW))
	fmt.Printf("problem: N=%d C=%d K=%d %dx%d (pad 1)\n", shape.N, shape.C, filters, shape.H, shape.W)
	fmt.Printf("direct convolution:   %v\n", directTime)
	fmt.Printf("winograd F(2x2,3x3):  %v\n", winoTime)
	fmt.Printf("max relative error:   %.2e\n", diff)
	fmt.Printf("multiplication saving: %.2fx fewer multiplies than direct (theory: 2.25x)\n",
		winograd.F2x2.MulReduction())

	// The F(4x4,3x3) variant used by non-fused implementations.
	got44, err := winograd.Conv2D(input, filter, 1, winograd.Options{Variant: winograd.F4x4, NonFused: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("F(4x4,3x3) non-fused error: %.2e (4x multiply reduction)\n",
		tensor.MaxRelDiff(want, got44.ToLayout(tensor.NCHW)))
}
