// Benchmarks: one target per table/figure of the paper's evaluation, plus
// CPU-library benchmarks for the Winograd substrate itself. The simulator
// benchmarks use a reduced sweep (Conv4 at N=32) so `go test -bench=.`
// terminates quickly; the full sweeps are `cmd/winograd-bench all`.
package repro

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/conv"
	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/winograd"
)

// --- CPU library benchmarks ------------------------------------------

func cpuProblem() (*tensor.Tensor, *tensor.Tensor) {
	in := tensor.NewImage(tensor.NCHW, tensor.Shape4{N: 4, C: 64, H: 28, W: 28})
	in.FillRandom(1)
	flt := tensor.NewFilter(tensor.KCRS, tensor.FilterShape{K: 64, C: 64, R: 3, S: 3})
	flt.FillRandom(2)
	return in, flt
}

func BenchmarkCPUDirect(b *testing.B) {
	in, flt := cpuProblem()
	for i := 0; i < b.N; i++ {
		if _, err := conv.DirectParallel(in, flt, conv.Params{Pad: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCPUIm2colGEMM(b *testing.B) {
	in, flt := cpuProblem()
	for i := 0; i < b.N; i++ {
		if _, err := conv.Im2col(in, flt, conv.Params{Pad: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCPUFFT(b *testing.B) {
	in, flt := cpuProblem()
	for i := 0; i < b.N; i++ {
		if _, err := conv.FFT(in, flt, conv.Params{Pad: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCPUWinogradFusedF2(b *testing.B) {
	in, flt := cpuProblem()
	for i := 0; i < b.N; i++ {
		if _, err := winograd.Conv2D(in, flt, 1, winograd.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCPUWinogradNonfusedF4(b *testing.B) {
	in, flt := cpuProblem()
	for i := 0; i < b.N; i++ {
		if _, err := winograd.Conv2D(in, flt, 1, winograd.Options{Variant: winograd.F4x4, NonFused: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: the paper's bk=64 cache blocking versus cuDNN's bk=32 at the
// algorithm level (input re-reads halve with the larger block).
func BenchmarkCPUWinogradBlockK64(b *testing.B) {
	in, flt := cpuProblem()
	for i := 0; i < b.N; i++ {
		if _, err := winograd.Conv2D(in, flt, 1, winograd.Options{BlockK: 64}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCPUWinogradBlockK32(b *testing.B) {
	in, flt := cpuProblem()
	for i := 0; i < b.N; i++ {
		if _, err := winograd.Conv2D(in, flt, 1, winograd.Options{BlockK: 32}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- simulator-backed experiment benchmarks ---------------------------

// benchLayer is the reduced configuration the per-figure benchmarks use.
var benchLayer = kernels.Problem{C: 256, K: 256, N: 32, H: 14, W: 14} // Conv4N32

func simSample(b *testing.B, dev gpu.Device, cfg kernels.Config, mainOnly bool) *bench.Sample {
	b.Helper()
	ctx := bench.NewCtx()
	ctx.Waves = 2
	s, err := ctx.KernelSample(dev, cfg, benchLayer, mainOnly)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkTable2CuDNNWinogradV100 regenerates one cell of Table 2.
func BenchmarkTable2CuDNNWinogradV100(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := simSample(b, gpu.V100(), kernels.CuDNNLike(), false)
		tGemm := model.Seconds(model.AlgoImplicitPrecompGEMM,
			model.Shape{C: 256, K: 256, H: 14, W: 14, N: 32}, gpu.V100())
		b.ReportMetric(tGemm/s.Seconds(gpu.V100()), "speedup-vs-GEMM")
	}
}

// BenchmarkFig7Yield regenerates the yield study on one layer.
func BenchmarkFig7Yield(b *testing.B) {
	for _, v := range []struct {
		name  string
		every int
	}{{"Natural", 0}, {"NVCC8", 8}, {"cuDNN7", 7}} {
		b.Run(v.name, func(b *testing.B) {
			cfg := kernels.Ours()
			cfg.YieldEvery = v.every
			for i := 0; i < b.N; i++ {
				s := simSample(b, gpu.RTX2070(), cfg, true)
				b.ReportMetric(s.DeviceTFLOPS(gpu.RTX2070()), "simTFLOPS")
			}
		})
	}
}

// BenchmarkFig8LDG regenerates the LDG-spacing study on one layer.
func BenchmarkFig8LDG(b *testing.B) {
	for _, gap := range []int{2, 4, 8} {
		b.Run(map[int]string{2: "LDG2", 4: "LDG4", 8: "LDG8"}[gap], func(b *testing.B) {
			cfg := kernels.Ours()
			cfg.LDGGap = gap
			for i := 0; i < b.N; i++ {
				s := simSample(b, gpu.RTX2070(), cfg, true)
				b.ReportMetric(s.DeviceTFLOPS(gpu.RTX2070()), "simTFLOPS")
			}
		})
	}
}

// BenchmarkFig9STS regenerates the STS-spacing study on one layer.
func BenchmarkFig9STS(b *testing.B) {
	for _, gap := range []int{2, 4, 6} {
		b.Run(map[int]string{2: "STS2", 4: "STS4", 6: "STS6"}[gap], func(b *testing.B) {
			cfg := kernels.Ours()
			cfg.STSGap = gap
			for i := 0; i < b.N; i++ {
				s := simSample(b, gpu.RTX2070(), cfg, true)
				b.ReportMetric(s.DeviceTFLOPS(gpu.RTX2070()), "simTFLOPS")
			}
		})
	}
}

// BenchmarkTable6Speedup regenerates the headline comparison on one layer
// per device.
func BenchmarkTable6Speedup(b *testing.B) {
	for _, dev := range []gpu.Device{gpu.RTX2070(), gpu.V100()} {
		b.Run(dev.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ours := simSample(b, dev, kernels.Ours(), false)
				base := simSample(b, dev, kernels.CuDNNLike(), false)
				b.ReportMetric(base.Seconds(dev)/ours.Seconds(dev), "speedup")
			}
		})
	}
}

// BenchmarkFig10SOL regenerates the Speed-of-Light measurement.
func BenchmarkFig10SOL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		main := simSample(b, gpu.RTX2070(), kernels.Ours(), true)
		full := simSample(b, gpu.RTX2070(), kernels.Ours(), false)
		b.ReportMetric(main.SOL*100, "mainloopSOL%")
		b.ReportMetric(full.SOL*100, "totalSOL%")
	}
}

// BenchmarkFig11SOLV100 is the V100 counterpart.
func BenchmarkFig11SOLV100(b *testing.B) {
	for i := 0; i < b.N; i++ {
		main := simSample(b, gpu.V100(), kernels.Ours(), true)
		b.ReportMetric(main.SOL*100, "mainloopSOL%")
	}
}

// BenchmarkFig12AlgoComparison regenerates one row of Figure 12.
func BenchmarkFig12AlgoComparison(b *testing.B) {
	dev := gpu.RTX2070()
	shape := model.Shape{C: 256, K: 256, H: 14, W: 14, N: 32}
	for i := 0; i < b.N; i++ {
		ours := simSample(b, dev, kernels.Ours(), false)
		t := ours.Seconds(dev)
		b.ReportMetric(model.Seconds(model.AlgoImplicitPrecompGEMM, shape, dev)/t, "vsPrecompGEMM")
		b.ReportMetric(model.Seconds(model.AlgoFFT, shape, dev)/t, "vsFFT")
		b.ReportMetric(model.Seconds(model.AlgoWinogradNonfused, shape, dev)/t, "vsNonfused")
	}
}

// BenchmarkFig14Workspace measures the workspace accounting itself.
func BenchmarkFig14Workspace(b *testing.B) {
	shape := model.Shape{C: 64, K: 64, H: 56, W: 56, N: 32}
	var sink int64
	for i := 0; i < b.N; i++ {
		for _, a := range model.Algos() {
			sink += model.WorkspaceBytes(a, shape)
		}
	}
	_ = sink
}

// BenchmarkBreakEven measures the Section 8.1 sweep.
func BenchmarkBreakEven(b *testing.B) {
	s := model.Shape{C: 256, K: 1, H: 14, W: 14, N: 32}
	for i := 0; i < b.N; i++ {
		k := model.BreakEvenK(s, gpu.V100(), 1024)
		b.ReportMetric(float64(k), "breakevenK")
	}
}

// BenchmarkBatchedGEMMKernel measures the generated 16-batched GEMM
// kernel (the paper's Section 2.3 sub-problem) on the simulator.
func BenchmarkBatchedGEMMKernel(b *testing.B) {
	p := kernels.GemmProblem{Batch: 16, M: 64, N: 32, K: 64}
	k, err := kernels.GenerateBatchedGEMM(kernels.Ours(), p)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		sim := gpu.NewSim(gpu.RTX2070())
		a := sim.Alloc(p.Batch*p.K*p.M*4 + 1<<20)
		bb := sim.Alloc(p.Batch*p.K*p.N*4 + 1<<20)
		c := sim.Alloc(p.Batch * p.M * p.N * 4)
		gx, gy, gz := kernels.GemmGrid(p)
		m, err := sim.Launch(k, gpu.LaunchOpts{Grid: gx, GridY: gy, GridZ: gz, Block: 256,
			Params: []uint32{a.Addr, bb.Addr, c.Addr}})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(m.SOL()*100, "SOL%")
	}
}

// BenchmarkSimulatorThroughput reports raw simulator speed (simulated
// warp-instructions per second) on the Winograd main loop.
func BenchmarkSimulatorThroughput(b *testing.B) {
	p := kernels.Problem{C: 64, K: 64, N: 32, H: 8, W: 8}
	for i := 0; i < b.N; i++ {
		res, err := kernels.RunConv(gpu.RTX2070(), kernels.Ours(), p, nil, nil, 1, true, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Main.Issued), "warpInstrs")
	}
}
