// sasslint statically verifies SASS kernels against the scheduling
// contract the paper's generator encodes: control-code ranges, stall
// and dependency-barrier hazard coverage, register bank conflicts and
// reuse-flag validity, shared-memory bank conflicts, and resource
// ceilings (internal/sasscheck). On top of the per-instruction rules it
// runs the whole-block verifier: an abstract interpretation of the
// kernel proving shared-memory race freedom, bounds safety, and barrier
// convergence on every path. It runs between the assembler and the
// simulator: anything it reports, the simulator's dynamic checkers
// (HazardCheck, SmemOracle) could observe on some schedule.
//
// Usage:
//
//	sasslint file.sass ...               lint assembled source files
//	sasslint -gen [-bk 64] [-yield 0] [-ldg 8] [-sts 6] [-mainloop]
//	         [-odd] [-ftf] [-gemm]      lint generated kernel configs
//	sasslint -rules id,id,...            restrict reporting to the named rules
//	sasslint -block N                    block size assumed for file-mode verification
//	sasslint -list                       list the rule catalogue
//
// With -gen and no -ftf/-gemm, the main convolution kernel for the
// given scheduling knobs is generated, linted, and its shared-memory
// access patterns verified against the 32-bank model. -rules takes a
// comma-separated list of rule IDs from -list; unknown IDs are
// rejected. Exit status: 0 clean, 1 diagnostics reported, 2 usage or
// assembly failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/kernels"
	"repro/internal/sasscheck"
	"repro/internal/turingas"
)

// enabled restricts which rules report; nil means every rule.
var enabled map[string]bool

func main() {
	gen := flag.Bool("gen", false, "lint generated kernels instead of source files")
	bk := flag.Int("bk", 64, "filter-dimension cache block (with -gen)")
	yield := flag.Int("yield", 0, "clear yield flag every N float instructions (with -gen)")
	ldg := flag.Int("ldg", 8, "FFMAs between LDGs (with -gen)")
	sts := flag.Int("sts", 6, "float instructions between STSs (with -gen)")
	noP2R := flag.Bool("nop2r", false, "recompute padding predicates instead of P2R/R2P (with -gen)")
	mainloop := flag.Bool("mainloop", false, "main-loop-only variant (with -gen)")
	odd := flag.Bool("odd", false, "odd-H/W problem exercising the edge-guard stores (with -gen)")
	ftf := flag.Bool("ftf", false, "lint the filter-transform kernel (with -gen)")
	gemm := flag.Bool("gemm", false, "lint the batched GEMM kernel (with -gen)")
	rules := flag.String("rules", "", "comma-separated rule IDs to report (default: all; see -list)")
	block := flag.Int("block", 256, "block size assumed when verifying source files")
	list := flag.Bool("list", false, "list the rule catalogue and exit")
	flag.Parse()

	if *list {
		for _, r := range sasscheck.Rules() {
			fmt.Printf("%-18s %s (%s)\n", r.ID, r.Summary, r.Paper)
		}
		return
	}
	if err := parseRules(*rules); err != nil {
		fmt.Fprintln(os.Stderr, "sasslint:", err)
		os.Exit(2)
	}

	total := 0
	if *gen {
		cfg := kernels.Config{BK: *bk, YieldEvery: *yield, LDGGap: *ldg, STSGap: *sts, UseP2R: !*noP2R}
		total += lintGenerated(cfg, *mainloop, *odd, *ftf, *gemm)
	}
	for _, path := range flag.Args() {
		total += lintFile(path, *block)
	}
	if !*gen && flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: sasslint [-list] [-rules id,...] [-gen [options]] [-block N] [file.sass ...]")
		os.Exit(2)
	}
	if total > 0 {
		fmt.Printf("%d diagnostics\n", total)
		os.Exit(1)
	}
}

// parseRules validates and installs the -rules filter. A typo must be
// an error, not a filter that silently matches nothing.
func parseRules(spec string) error {
	if spec == "" {
		return nil
	}
	valid := map[string]bool{}
	ids := make([]string, 0, len(sasscheck.Rules()))
	for _, r := range sasscheck.Rules() {
		valid[r.ID] = true
		ids = append(ids, r.ID)
	}
	enabled = map[string]bool{}
	for _, id := range strings.Split(spec, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if !valid[id] {
			return fmt.Errorf("unknown rule %q; valid rules: %s", id, strings.Join(ids, ", "))
		}
		enabled[id] = true
	}
	if len(enabled) == 0 {
		enabled = nil
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sasslint:", err)
	os.Exit(2)
}

func report(name string, ds []sasscheck.Diag) int {
	n := 0
	for _, d := range ds {
		if enabled != nil && !enabled[d.Rule] {
			continue
		}
		fmt.Printf("%s: %s\n", name, d)
		n++
	}
	return n
}

// lintFile assembles one .sass source file and checks every kernel in
// the resulting module: the per-instruction rules plus the whole-block
// verifier at the given block size.
func lintFile(path string, block int) int {
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	mod, err := turingas.Assemble(string(src))
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	n := 0
	for i := range mod.Kernels {
		k := &mod.Kernels[i]
		ds, err := sasscheck.CheckKernel(k)
		if err != nil {
			fatal(err)
		}
		vds, err := sasscheck.VerifyKernel(k, sasscheck.VerifyOpts{Threads: block})
		if err != nil {
			fatal(err)
		}
		n += report(fmt.Sprintf("%s:%s", path, k.Name), append(ds, vds...))
	}
	return n
}

// lintGenerated generates the requested kernels and checks the
// instruction stream, the whole-block verifier, and (for the main
// kernel) the hand-enumerated shared-memory access patterns.
func lintGenerated(cfg kernels.Config, mainloop, odd, ftf, gemm bool) int {
	n := 0
	if ftf {
		for _, k := range []int{32, 64, 256} {
			kern, err := kernels.GenerateFTF(k)
			if err != nil {
				fatal(err)
			}
			ds, err := sasscheck.CheckKernel(kern)
			if err != nil {
				fatal(err)
			}
			vds, err := sasscheck.VerifyKernel(kern, sasscheck.VerifyOpts{Threads: kernels.FTFBlock(k)})
			if err != nil {
				fatal(err)
			}
			n += report(fmt.Sprintf("ftf(k=%d)", k), append(ds, vds...))
		}
	}
	if gemm {
		k, err := kernels.GenerateBatchedGEMM(cfg, kernels.GemmProblem{M: 128, N: 128, K: 64, Batch: 16})
		if err != nil {
			fatal(err)
		}
		ds, err := sasscheck.CheckKernel(k)
		if err != nil {
			fatal(err)
		}
		vds, err := sasscheck.VerifyKernel(k, sasscheck.VerifyOpts{Threads: 256})
		if err != nil {
			fatal(err)
		}
		n += report("gemm", append(ds, vds...))
	}
	if ftf || gemm {
		return n
	}

	p := kernels.Problem{C: 16, K: 64, N: 32, H: 4, W: 4}
	if odd {
		p.H, p.W = 7, 7
	}
	k, err := kernels.Generate(cfg, p, mainloop)
	if err != nil {
		fatal(err)
	}
	name := fmt.Sprintf("conv(bk=%d,yield=%d,ldg=%d,sts=%d,p2r=%v,mainloop=%v,odd=%v)",
		cfg.BK, cfg.YieldEvery, cfg.LDGGap, cfg.STSGap, cfg.UseP2R, mainloop, odd)
	ds, err := sasscheck.CheckKernel(k)
	if err != nil {
		fatal(err)
	}
	vds, err := sasscheck.VerifyKernel(k, sasscheck.VerifyOpts{Threads: 256})
	if err != nil {
		fatal(err)
	}
	n += report(name, append(ds, vds...))

	accs := []sasscheck.SmemAccess{}
	for _, sp := range kernels.SmemPatterns(cfg) {
		accs = append(accs, sasscheck.SmemAccess{Desc: sp.Desc, Width: sp.Width,
			Addrs: sp.Addrs, Active: sp.Active, AllowConflicts: sp.AllowConflicts})
	}
	n += report(name+" smem", sasscheck.CheckSmem(accs))
	return n
}
