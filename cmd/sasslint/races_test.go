package main

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/gpu"
	"repro/internal/sasscheck"
	"repro/internal/turingas"
)

// TestRacesGolden pins the verifier's diagnostics for the executable
// broken corpus exactly as the CLI reports them (lintFile formatting:
// per-instruction rules followed by the whole-block verifier at the
// default 256-thread block... here 64, the size the differential test
// launches with).
func TestRacesGolden(t *testing.T) {
	src, err := os.ReadFile("testdata/races.sass")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := turingas.Assemble(string(src))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for i := range mod.Kernels {
		k := &mod.Kernels[i]
		ds, err := sasscheck.CheckKernel(k)
		if err != nil {
			t.Fatal(err)
		}
		vds, err := sasscheck.VerifyKernel(k, sasscheck.VerifyOpts{Threads: 64})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range append(ds, vds...) {
			fmt.Fprintf(&b, "%s: %s\n", k.Name, d)
		}
	}
	got := b.String()
	if *update {
		if err := os.WriteFile("testdata/races.golden", []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile("testdata/races.golden")
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("diagnostics changed (run with -update to accept):\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	// The corpus must keep covering each whole-block rule class.
	for _, c := range []struct{ kernel, rule string }{
		{"ww", "smem-race"},
		{"rw", "smem-race"},
		{"oob", "smem-bounds"},
		{"divbar", "bar-divergent"},
	} {
		if !strings.Contains(got, c.kernel+": ") || !strings.Contains(got, " "+c.rule+": ") {
			t.Errorf("races.sass kernel %s no longer trips %s", c.kernel, c.rule)
		}
	}
}

// TestDifferentialOracle asserts the soundness direction of the
// verifier on the executable corpus: every finding the dynamic oracle
// observes on a concrete launch must be covered by a static report —
// same rule, at the finding's pc or (for races, whose static diagnostic
// is placed at the later instruction of the pair) its other pc.
func TestDifferentialOracle(t *testing.T) {
	src, err := os.ReadFile("testdata/races.sass")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := turingas.Assemble(string(src))
	if err != nil {
		t.Fatal(err)
	}
	for i := range mod.Kernels {
		k := &mod.Kernels[i]
		t.Run(k.Name, func(t *testing.T) {
			sim := gpu.NewSim(gpu.RTX2070())
			sim.Oracle = &gpu.SmemOracle{}
			// The oob kernel's launch fails on the rejected access; the
			// oracle still logs the finding, which is what we check.
			_, launchErr := sim.Launch(k, gpu.LaunchOpts{Grid: 1, Block: 64})
			fs := sim.Oracle.Findings()
			if len(fs) == 0 {
				if launchErr != nil {
					t.Fatalf("launch failed without oracle findings: %v", launchErr)
				}
				t.Fatal("corpus kernel tripped no dynamic findings; it no longer tests anything")
			}
			ds, err := sasscheck.VerifyKernel(k, sasscheck.VerifyOpts{Threads: 64})
			if err != nil {
				t.Fatal(err)
			}
			staticAt := map[string]map[int]bool{}
			for _, d := range ds {
				if staticAt[d.Rule] == nil {
					staticAt[d.Rule] = map[int]bool{}
				}
				staticAt[d.Rule][d.PC] = true
			}
			for _, f := range fs {
				if staticAt[f.Kind][f.PC] || (f.OtherPC >= 0 && staticAt[f.Kind][f.OtherPC]) {
					continue
				}
				t.Errorf("dynamic finding with no static report: %s\nstatic: %v", f, ds)
			}
		})
	}
}
