package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/kernels"
	"repro/internal/sasscheck"
	"repro/internal/turingas"
)

var update = flag.Bool("update", false, "rewrite testdata/broken.golden")

// TestBrokenGolden pins the diagnostic set for the committed
// deliberately-broken kernel: every hazard class in testdata/broken.sass
// must be reported, with the exact rule, pc, severity, and message.
func TestBrokenGolden(t *testing.T) {
	src, err := os.ReadFile("testdata/broken.sass")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := turingas.Assemble(string(src))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for i := range mod.Kernels {
		k := &mod.Kernels[i]
		ds, err := sasscheck.CheckKernel(k)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range ds {
			fmt.Fprintf(&b, "%s: %s\n", k.Name, d)
		}
	}
	got := b.String()
	if *update {
		if err := os.WriteFile("testdata/broken.golden", []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile("testdata/broken.golden")
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("diagnostics changed (run with -update to accept):\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	// The demo must keep covering one instance of each advertised class.
	for _, rule := range []string{"stall-raw", "load-no-writebar", "bar-raw", "bar-war",
		"bar-unreleased", "wait-never-set", "reuse-stale", "ffma-bank", "vec-align", "mem-align"} {
		if !strings.Contains(got, " "+rule+": ") {
			t.Errorf("broken.sass no longer trips %s", rule)
		}
	}
}

// TestLintGeneratedClean drives the CLI's -gen path for the two
// flagship configs: zero diagnostics.
func TestLintGeneratedClean(t *testing.T) {
	for _, c := range []struct {
		name string
		n    int
	}{
		{"ours", lintGenerated(kernels.Ours(), false, false, false, false)},
		{"ftf", lintGenerated(kernels.Ours(), false, false, true, false)},
		{"gemm", lintGenerated(kernels.Ours(), false, false, false, true)},
	} {
		if c.n != 0 {
			t.Errorf("%s: %d diagnostics from clean generated kernels", c.name, c.n)
		}
	}
}
