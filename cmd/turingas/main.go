// turingas assembles SASS source files into cubin modules and
// disassembles cubin modules back to source — the command-line face of
// the internal/turingas assembler (the paper's TuringAs, Section 5.3).
//
// Usage:
//
//	turingas -o out.cubin in.sass        assemble
//	turingas -d in.cubin                 disassemble to stdout
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cubin"
	"repro/internal/turingas"
)

func main() {
	out := flag.String("o", "", "output .cubin path (assembly mode)")
	dis := flag.Bool("d", false, "disassemble a .cubin instead of assembling")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: turingas [-d] [-o out.cubin] file")
		os.Exit(2)
	}
	path := flag.Arg(0)

	if *dis {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		mod, err := cubin.Read(f)
		if err != nil {
			fatal(err)
		}
		for i := range mod.Kernels {
			src, err := turingas.Disassemble(&mod.Kernels[i])
			if err != nil {
				fatal(err)
			}
			fmt.Println(src)
		}
		return
	}

	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	mod, err := turingas.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		for _, k := range mod.Kernels {
			fmt.Printf("kernel %s: %d instructions, %d regs, %d B smem, %d B params\n",
				k.Name, len(k.Code), k.NumRegs, k.SmemBytes, k.ParamBytes)
		}
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if _, err := mod.WriteTo(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d kernels)\n", *out, len(mod.Kernels))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "turingas:", err)
	os.Exit(1)
}
