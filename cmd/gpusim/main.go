// gpusim runs the paper's Winograd kernels on the simulated GPU and
// prints launch metrics — a quick way to inspect one configuration
// without the full bench harness.
//
// Usage:
//
//	gpusim [-dev NAME] [-layer conv2..conv5] [-n 32] [-bk 64]
//	       [-yield 0] [-ldg 8] [-sts 6] [-mainloop] [-waves 4] [-verify]
//	       [-prof] [-trace trace.json] [-calibrate]
//
// -dev accepts any registered device name (see internal/gpu/devices);
// an unknown name lists the registered ones.
//
// -verify runs a reduced problem end to end (all blocks simulated) and
// checks the simulated kernel's output against the CPU reference.
//
// -calibrate runs the internal/microbench probe suite on the selected
// device with the selected backend and prints the probe report,
// exiting non-zero if any probe disagrees with the device file.
//
// -prof attaches the profiler and prints stall-attribution reports with
// annotated SASS listings for both launches (the memory-bound filter
// transform, then the sampled main kernel). -trace also writes the main
// kernel's warp timeline as a Chrome trace (load at chrome://tracing or
// ui.perfetto.dev) and implies profiling.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/conv"
	"repro/internal/gpu"
	"repro/internal/gpu/prof"
	"repro/internal/kernels"
	"repro/internal/microbench"
	"repro/internal/tensor"
)

func main() {
	devName := flag.String("dev", "rtx2070", "registered device name (unknown value lists the registry)")
	layer := flag.String("layer", "conv4", "ResNet layer: conv2..conv5")
	n := flag.Int("n", 32, "batch size")
	bk := flag.Int("bk", 64, "filter-dimension cache block (64 = paper, 32 = cuDNN-like)")
	yield := flag.Int("yield", 0, "clear yield flag every N float instructions (0 = natural)")
	ldg := flag.Int("ldg", 8, "FFMAs between LDGs")
	sts := flag.Int("sts", 6, "float instructions between STSs")
	mainloop := flag.Bool("mainloop", false, "measure the main loop only")
	waves := flag.Int("waves", 4, "occupancy-waves to sample")
	verify := flag.Bool("verify", false, "run a reduced problem fully and verify against CPU reference")
	profFlag := flag.Bool("prof", false, "print stall-attribution reports with annotated SASS listings")
	trace := flag.String("trace", "", "write the main kernel's warp timeline as a Chrome trace to this file (implies -prof)")
	backendFlag := flag.String("backend", "threaded", "simulator execution backend (threaded or switch; bit-identical results)")
	simWorkers := flag.Int("simworkers", 0, "worker goroutines per sharded full-grid simulation (0 = GOMAXPROCS)")
	calibrate := flag.Bool("calibrate", false, "run the microbenchmark probe suite on -dev and exit")
	flag.Parse()

	be, err := gpu.ParseBackend(*backendFlag)
	if err != nil {
		fatal(err)
	}
	simOpts := kernels.SimOpts{Backend: be, Workers: *simWorkers}

	dev, err := gpu.DeviceByName(*devName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpusim:", err)
		os.Exit(2)
	}

	if *calibrate {
		res, err := microbench.Calibrate(dev, microbench.Options{Backend: be})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("calibrating %s on the %s backend\n", dev.Name, be)
		fmt.Print(microbench.Report(res))
		if !microbench.Pass(res) {
			fatal(fmt.Errorf("calibration failed: %d probe(s) disagree with the device file",
				len(microbench.Failures(res))))
		}
		fmt.Println("calibration PASSED")
		return
	}

	var l bench.Layer
	found := false
	for _, cand := range bench.Layers() {
		if cand.Name == capitalize(*layer) {
			l, found = cand, true
		}
	}
	if !found {
		fmt.Fprintln(os.Stderr, "unknown layer", *layer)
		os.Exit(2)
	}

	cfg := kernels.Config{BK: *bk, YieldEvery: *yield, LDGGap: *ldg, STSGap: *sts, UseP2R: true}
	if *bk == 32 {
		cfg.DeclaredSmem = 48 * 1024
	}

	if *verify {
		p := kernels.Problem{C: 16, K: *bk, N: 32, H: l.HW%8*0 + 8, W: 8}
		if l.HW == 7 {
			p.H, p.W = 7, 7
		}
		in := tensor.NewImage(tensor.CHWN, tensor.Shape4{N: p.N, C: p.C, H: p.H, W: p.W})
		in.FillRandom(1)
		flt := tensor.NewFilter(tensor.CRSK, tensor.FilterShape{K: p.K, C: p.C, R: 3, S: 3})
		flt.FillRandom(2)
		res, err := kernels.RunConvWith(dev, cfg, p, kernels.ConvOpts{
			In: in, Flt: flt, HazardCheck: true, Sim: simOpts,
		})
		if err != nil {
			fatal(err)
		}
		want, err := conv.DirectParallel(in, flt, conv.Params{Pad: 1})
		if err != nil {
			fatal(err)
		}
		diff := tensor.MaxRelDiff(want, res.Output.ToLayout(tensor.NCHW))
		fmt.Printf("verification on %+v: max relative error vs direct convolution = %.2e\n", p, diff)
		if diff > 2e-4 {
			fatal(fmt.Errorf("verification FAILED"))
		}
		fmt.Println("verification PASSED (hazard checker clean)")
		return
	}

	p := l.Problem(*n)
	ctx := bench.NewCtx()
	ctx.Waves = *waves
	ctx.Profile = *profFlag || *trace != ""
	ctx.ProfileTimeline = *trace != ""
	ctx.Sim = simOpts
	s, err := ctx.KernelSample(dev, cfg, p, *mainloop)
	if err != nil {
		fatal(err)
	}
	m := s.Metrics
	fmt.Printf("%s %s (C=%d K=%d HxW=%dx%d N=%d) bk=%d on %s\n",
		l.Name, map[bool]string{true: "main loop", false: "full kernel"}[*mainloop],
		p.C, p.K, p.H, p.W, p.N, *bk, dev.Name)
	fmt.Printf("  occupancy:     %d block(s)/SM (%s-limited), %d warps/scheduler\n",
		s.Occ.BlocksPerSM, s.Occ.Limiter, s.Occ.WarpsPerScheduler)
	fmt.Printf("  grid:          %d blocks -> %.0f device waves\n", s.TotalBlocks,
		float64(s.TotalBlocks)/float64(dev.SMs*s.Occ.BlocksPerSM))
	fmt.Printf("  cycles/wave:   %.0f\n", s.CyclesPerWave)
	fmt.Printf("  SOL:           %.1f%%\n", s.SOL*100)
	fmt.Printf("  device math:   %.2f TFLOPS (peak %.2f)\n", s.DeviceTFLOPS(dev), dev.PeakFP32TFLOPS())
	fmt.Printf("  effective:     %.2f TFLOPS direct-conv-equivalent\n", s.EffectiveTFLOPS(dev, p))
	fmt.Printf("  est. runtime:  %.3f ms\n", s.Seconds(dev)*1e3)
	fmt.Printf("  switches=%d regBankConf=%d smemConf=%d smemQStall=%d mshrStall=%d L2 %d/%d hits\n",
		m.SwitchCount, m.RegBankConflicts, m.SmemConflictCycles,
		m.MIOStallCycles, m.MSHRStallCycles, m.L2Hits, m.L2Hits+m.L2Misses)

	if ctx.Profile {
		for _, lp := range []*gpu.LaunchProfile{s.FTFProf, s.Prof} {
			fmt.Println()
			if err := prof.Text(os.Stdout, lp); err != nil {
				fatal(err)
			}
		}
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fatal(err)
		}
		if err := prof.WriteChromeTrace(f, s.Prof); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote Chrome trace of the main kernel to %s\n", *trace)
	}
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	b := []byte(s)
	if b[0] >= 'a' && b[0] <= 'z' {
		b[0] -= 32
	}
	return string(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gpusim:", err)
	os.Exit(1)
}
