package main

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/bench"
	"repro/internal/gpu"
	"repro/internal/microbench"
	"repro/internal/tune"
)

// calibrateOpts carries the calibrate-subcommand flags out of run's
// flag set.
type calibrateOpts struct {
	device   string // empty = every registered device
	jobs     int
	markdown bool
	backend  gpu.Backend
}

// runCalibrate is the `winograd-bench calibrate` subcommand: run the
// microbenchmark probe suite against one or all registered device
// files and print, per device, the probe report plus the Table-6-style
// per-layer algorithm selection the spec implies (cold tuning cache, so
// every fused time comes from the analytic model — a pure function of
// the device file). Devices calibrate across -jobs workers; stdout is
// byte-identical for any -jobs value. Returns 1 if any probe fails.
func runCalibrate(o calibrateOpts, stdout, stderr io.Writer) int {
	names := gpu.DeviceNames()
	if o.device != "" {
		dev, err := gpu.DeviceByName(o.device)
		if err != nil {
			fmt.Fprintf(stderr, "winograd-bench calibrate: %v\n", err)
			return 2
		}
		names = []string{strings.ToLower(dev.Name)}
	}

	type devReport struct {
		text string
		fail []string
		err  error
	}
	reports := make([]devReport, len(names))
	jobs := o.jobs
	if jobs < 1 {
		jobs = 1
	}
	if jobs > len(names) {
		jobs = len(names)
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				reports[i] = calibrateDevice(names[i], o)
			}
		}()
	}
	for i := range names {
		work <- i
	}
	close(work)
	wg.Wait()

	failed := 0
	for i, r := range reports {
		if r.err != nil {
			fmt.Fprintf(stderr, "winograd-bench calibrate: %s: %v\n", names[i], r.err)
			return 1
		}
		fmt.Fprint(stdout, r.text)
		if len(r.fail) > 0 {
			failed++
			for _, f := range r.fail {
				fmt.Fprintf(stderr, "calibrate %s: FAIL %s\n", names[i], f)
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "calibration failed on %d device(s)\n", failed)
		return 1
	}
	return 0
}

// calibrateDevice produces one device's calibration section.
func calibrateDevice(name string, o calibrateOpts) (out struct {
	text string
	fail []string
	err  error
}) {
	dev, err := gpu.DeviceByName(name)
	if err != nil {
		out.err = err
		return
	}
	res, err := microbench.Calibrate(dev, microbench.Options{Backend: o.backend})
	if err != nil {
		out.err = err
		return
	}
	var b strings.Builder
	status := "PASS"
	if !microbench.Pass(res) {
		status = "FAIL"
		out.fail = microbench.Failures(res)
	}
	fmt.Fprintf(&b, "=== %s: %d SMs @ %.2f GHz, %.0f GB/s — calibration %s ===\n",
		dev.Name, dev.SMs, dev.ClockGHz, dev.DRAMBandwidthGBs, status)
	b.WriteString(microbench.Report(res))
	b.WriteString("\n")
	t := selectionSweep(dev)
	if o.markdown {
		b.WriteString(t.Markdown())
	} else {
		b.WriteString(t.Format())
	}
	b.WriteString("\n")
	out.text = b.String()
	return
}

// selectionSweep is the calibrate report's quick Table-6 analogue: the
// per-layer algorithm choice at N=32 from the analytic models alone
// (cold cache), showing where the fused F(2x2,3x3) kernel loses its
// edge on this device.
func selectionSweep(dev gpu.Device) *bench.Table {
	cache := tune.NewCache()
	t := &bench.Table{
		ID:    "calibrate-select",
		Title: fmt.Sprintf("Per-layer algorithm selection from the analytic model (%s, N=32)", dev.Name),
		Header: []string{"Layer", "algo", "fused (ms)", "gemm (ms)", "nonfused (ms)"},
	}
	for _, l := range bench.Layers() {
		ch := tune.Select(cache, dev, l.Problem(32), 4)
		t.AddRow(
			l.Tag(32),
			string(ch.Algo),
			fmt.Sprintf("%.3f", ch.FusedSeconds*1e3),
			fmt.Sprintf("%.3f", ch.GEMMSeconds*1e3),
			fmt.Sprintf("%.3f", ch.NonfusedSeconds*1e3),
		)
	}
	t.Note("cold cache: fused times come from the Section 8.1 analytic model, not simulation")
	return t
}
