package main

import (
	"os"
	"testing"
)

const serveGoldenPath = "testdata/serve_quick.golden"

// TestServeGolden pins the load-generator report to a committed golden,
// byte for byte, and checks it is independent of the worker count — the
// serving twin of the experiment-table determinism contract: the report
// is a pure function of (seed, config) even though every sampled batch
// really executes through cudart.Forward.
//
// Regenerate after an intentional change with:
//
//	go test ./cmd/winograd-bench -run TestServeGolden -update
func TestServeGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("load generation with real batch executions takes seconds")
	}
	args := []string{"-requests", "600", "-seed", "42", "serve"}
	seq, _, code := runCapture(t, append([]string{"-jobs", "1"}, args...)...)
	if code != 0 {
		t.Fatalf("sequential serve run exited %d", code)
	}
	if *update {
		if err := os.WriteFile(serveGoldenPath, []byte(seq), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", serveGoldenPath, len(seq))
	}
	golden, err := os.ReadFile(serveGoldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if diff := firstDiff(string(golden), seq); diff != "" {
		t.Errorf("-jobs 1 stdout diverges from %s:\n%s", serveGoldenPath, diff)
	}
	par, _, code := runCapture(t, append([]string{"-jobs", "4"}, args...)...)
	if code != 0 {
		t.Fatalf("concurrent serve run exited %d", code)
	}
	if diff := firstDiff(seq, par); diff != "" {
		t.Errorf("-jobs 4 stdout diverges from -jobs 1:\n%s", diff)
	}
}

// TestServeUnknownDevice covers the subcommand's error path.
func TestServeUnknownDevice(t *testing.T) {
	_, errOut, code := runCapture(t, "-device", "no-such-gpu", "serve")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if errOut == "" {
		t.Fatal("no error message")
	}
}
