package main

import (
	"fmt"
	"io"
	"time"

	"repro/internal/gpu"
	"repro/internal/store"
	"repro/internal/tune"
)

// tuneOpts carries the tune-subcommand flags out of run's flag set.
type tuneOpts struct {
	waves       int
	quick       bool
	markdown    bool
	jobs        int
	budget      int
	cache       string // legacy tune/v1 file (imported and kept updated)
	storePath   string // content-addressed store/v1 file
	storeVerify bool
	shard       string
	device      string
}

// runTune is the `winograd-bench tune` subcommand: search the scheduling
// knob space per ResNet layer on the simulator, persist measurements to
// the content-addressed experiment store (and, for compatibility, the
// legacy tune/v1 cache), and print the tuned-vs-default report plus the
// per-layer algorithm selection table. Tables go to stdout and are
// byte-identical for any -jobs value and for cold versus warm stores;
// store/cache warnings and scheduling stats go to stderr.
//
// With -shard i/N the run measures only its deterministic partition of
// the pruned candidate lattice and emits a partial store: no tables
// (they need the whole lattice), just the shard's measurements, such
// that `store merge` over all N partials reproduces the single-process
// store byte for byte.
func runTune(o tuneOpts, stdout, stderr io.Writer) int {
	dev, err := gpu.DeviceByName(o.device)
	if err != nil {
		fmt.Fprintf(stderr, "winograd-bench tune: %v\n", err)
		return 2
	}
	shard, err := tune.ParseShard(o.shard)
	if err != nil {
		fmt.Fprintf(stderr, "winograd-bench tune: %v\n", err)
		return 2
	}
	sharded := shard.Count > 1
	if sharded && o.cache != "" {
		fmt.Fprintln(stderr, "winograd-bench tune: -tunecache is a whole-lattice legacy format; shards persist through -store only")
		return 2
	}
	if sharded && o.storePath == "" {
		fmt.Fprintln(stderr, "winograd-bench tune: -shard requires -store (the partial store is the shard's product)")
		return 2
	}

	st := store.New()
	if o.storePath != "" {
		var rep *store.LoadReport
		st, rep = store.Load(o.storePath)
		for _, w := range rep.Warnings {
			fmt.Fprintln(stderr, w)
		}
	}

	// Legacy tune/v1 import: entries seed the store under current-source
	// keys, then the file is rewritten with this run's measurements so
	// existing -tunecache workflows keep functioning.
	var legacy *tune.Cache
	if o.cache != "" {
		var warns []string
		legacy, warns = tune.Load(o.cache)
		for _, w := range warns {
			fmt.Fprintln(stderr, w)
		}
		for _, e := range legacy.Entries {
			if e.Device != dev.Name {
				continue
			}
			if err := tune.SeedStore(st, dev, e); err != nil {
				fmt.Fprintf(stderr, "winograd-bench tune: importing legacy cache: %v\n", err)
				return 1
			}
		}
	}

	tuner := &tune.Tuner{Dev: dev, Budget: o.budget, Waves: o.waves, Workers: o.jobs,
		Shard: shard, VerifyStore: o.storeVerify,
		Warnf: func(format string, args ...any) { fmt.Fprintf(stderr, format+"\n", args...) }}
	start := time.Now()
	results, stats, err := tuner.Tune(st, tune.SweepCases(o.quick))
	if err != nil {
		fmt.Fprintf(stderr, "winograd-bench tune: %v\n", err)
		return 1
	}

	if !sharded {
		for _, t := range []interface {
			Format() string
			Markdown() string
		}{tune.Report(dev, results), tune.SelectionTable(dev, results)} {
			if o.markdown {
				fmt.Fprintln(stdout, t.Markdown())
			} else {
				fmt.Fprintln(stdout, t.Format())
			}
		}
	}

	if o.cache != "" {
		for _, r := range results {
			for _, e := range r.Candidates {
				legacy.Put(e)
			}
		}
		if err := legacy.Save(o.cache); err != nil {
			fmt.Fprintf(stderr, "winograd-bench tune: saving legacy cache: %v\n", err)
			return 1
		}
	}
	if o.storePath != "" {
		if err := st.Save(o.storePath); err != nil {
			fmt.Fprintf(stderr, "winograd-bench tune: saving store: %v\n", err)
			return 1
		}
	}

	simulated := 0
	for _, r := range results {
		simulated += r.Simulated
	}
	shardNote := ""
	if sharded {
		shardNote = fmt.Sprintf(" (shard %d/%d)", shard.Index, shard.Count)
	}
	fmt.Fprintf(stderr, "tuned %d layers on %s%s: %d candidates simulated this run, %d in store, in %v on %d workers\n",
		len(results), dev.Name, shardNote, simulated, st.Len(),
		time.Since(start).Round(time.Millisecond), stats.Workers)
	return 0
}
