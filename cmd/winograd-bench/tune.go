package main

import (
	"fmt"
	"io"
	"time"

	"repro/internal/gpu"
	"repro/internal/tune"
)

// tuneOpts carries the tune-subcommand flags out of run's flag set.
type tuneOpts struct {
	waves    int
	quick    bool
	markdown bool
	jobs     int
	budget   int
	cache    string
	device   string
}

// runTune is the `winograd-bench tune` subcommand: search the scheduling
// knob space per ResNet layer on the simulator, persist measurements to
// the JSON tuning cache, and print the tuned-vs-default report plus the
// per-layer algorithm selection table. Tables go to stdout and are
// byte-identical for any -jobs value and for cold versus warm caches;
// cache warnings and scheduling stats go to stderr.
func runTune(o tuneOpts, stdout, stderr io.Writer) int {
	dev, err := gpu.DeviceByName(o.device)
	if err != nil {
		fmt.Fprintf(stderr, "winograd-bench tune: %v\n", err)
		return 2
	}

	cache := tune.NewCache()
	if o.cache != "" {
		var warns []string
		cache, warns = tune.Load(o.cache)
		for _, w := range warns {
			fmt.Fprintln(stderr, w)
		}
	}

	tuner := &tune.Tuner{Dev: dev, Budget: o.budget, Waves: o.waves, Workers: o.jobs}
	start := time.Now()
	results, stats, err := tuner.Tune(cache, tune.SweepCases(o.quick))
	if err != nil {
		fmt.Fprintf(stderr, "winograd-bench tune: %v\n", err)
		return 1
	}

	for _, t := range []interface {
		Format() string
		Markdown() string
	}{tune.Report(dev, results), tune.SelectionTable(dev, results)} {
		if o.markdown {
			fmt.Fprintln(stdout, t.Markdown())
		} else {
			fmt.Fprintln(stdout, t.Format())
		}
	}

	if o.cache != "" {
		if err := cache.Save(o.cache); err != nil {
			fmt.Fprintf(stderr, "winograd-bench tune: saving cache: %v\n", err)
			return 1
		}
	}

	simulated := 0
	for _, r := range results {
		simulated += r.Simulated
	}
	fmt.Fprintf(stderr, "tuned %d layers on %s: %d candidates simulated this run, %d cached total, in %v on %d workers\n",
		len(results), dev.Name, simulated, cache.Len(),
		time.Since(start).Round(time.Millisecond), stats.Workers)
	return 0
}
