package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden quick-sweep table file")

const goldenPath = "testdata/quick_all.golden"

func runCapture(t *testing.T, argv ...string) (string, string, int) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(argv, &out, &errOut)
	return out.String(), errOut.String(), code
}

// TestQuickSweepGolden pins the full quick-sweep stdout — every table of
// every experiment — to a committed golden file, byte for byte. This is
// the simulator's determinism contract: any change to cycle accounting,
// table formatting, or experiment order shows up as a diff here. The
// sweep must also be independent of the worker count, so the sequential
// and concurrent schedules are both compared.
//
// Regenerate after an intentional change with:
//
//	go test ./cmd/winograd-bench -run TestQuickSweepGolden -update
func TestQuickSweepGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("quick sweep takes several seconds")
	}
	seq, _, code := runCapture(t, "-quick", "-jobs", "1", "all")
	if code != 0 {
		t.Fatalf("sequential run exited %d", code)
	}
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(seq), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(seq))
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if diff := firstDiff(string(golden), seq); diff != "" {
		t.Errorf("-jobs 1 stdout diverges from %s:\n%s", goldenPath, diff)
	}

	par, _, code := runCapture(t, "-quick", "-jobs", "4", "all")
	if code != 0 {
		t.Fatalf("concurrent run exited %d", code)
	}
	if diff := firstDiff(seq, par); diff != "" {
		t.Errorf("-jobs 4 stdout diverges from -jobs 1:\n%s", diff)
	}
}

// firstDiff renders the first line-level difference between two texts
// (empty when identical), keeping failure output readable.
func firstDiff(want, got string) string {
	if want == got {
		return ""
	}
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d, got %d", len(wl), len(gl))
}

// TestListAndUnknown covers the no-argument listing and the unknown-id
// error path without running any simulation.
func TestListAndUnknown(t *testing.T) {
	out, _, code := runCapture(t)
	if code != 0 || !strings.Contains(out, "experiments:") || !strings.Contains(out, "all        run everything") {
		t.Fatalf("listing: code=%d out=%q", code, out)
	}
	out, errOut, code := runCapture(t, "nope", "table1", "nope", "alsobad")
	if code != 2 {
		t.Fatalf("unknown ids: code=%d", code)
	}
	if out != "" {
		t.Fatalf("unknown ids wrote to stdout: %q", out)
	}
	for _, want := range []string{`unknown experiment "nope"`, `unknown experiment "alsobad"`} {
		if !strings.Contains(errOut, want) {
			t.Fatalf("stderr %q missing %q", errOut, want)
		}
	}
	if strings.Count(errOut, `"nope"`) != 1 {
		t.Fatalf("duplicate unknown id reported twice: %q", errOut)
	}
}
