package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden quick-sweep table file")

const goldenPath = "testdata/quick_all.golden"

func runCapture(t *testing.T, argv ...string) (string, string, int) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(argv, &out, &errOut)
	return out.String(), errOut.String(), code
}

// TestQuickSweepGolden pins the full quick-sweep stdout — every table of
// every experiment — to a committed golden file, byte for byte. This is
// the simulator's determinism contract: any change to cycle accounting,
// table formatting, or experiment order shows up as a diff here. The
// sweep must also be independent of the worker count, so the sequential
// and concurrent schedules are both compared.
//
// Regenerate after an intentional change with:
//
//	go test ./cmd/winograd-bench -run TestQuickSweepGolden -update
func TestQuickSweepGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("quick sweep takes several seconds")
	}
	seq, _, code := runCapture(t, "-quick", "-jobs", "1", "all")
	if code != 0 {
		t.Fatalf("sequential run exited %d", code)
	}
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(seq), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(seq))
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if diff := firstDiff(string(golden), seq); diff != "" {
		t.Errorf("-jobs 1 stdout diverges from %s:\n%s", goldenPath, diff)
	}

	par, _, code := runCapture(t, "-quick", "-jobs", "4", "all")
	if code != 0 {
		t.Fatalf("concurrent run exited %d", code)
	}
	if diff := firstDiff(seq, par); diff != "" {
		t.Errorf("-jobs 4 stdout diverges from -jobs 1:\n%s", diff)
	}

	// The execution backend and the sharded-simulation worker count must
	// be invisible in the tables: every cell of the backend x workers
	// matrix reproduces the same bytes (CI additionally checks the same
	// matrix from the real binary against the committed golden).
	for _, backend := range []string{"switch", "threaded"} {
		for _, workers := range []string{"1", "4"} {
			got, _, code := runCapture(t, "-quick", "-jobs", "4",
				"-backend", backend, "-simworkers", workers, "all")
			if code != 0 {
				t.Fatalf("-backend %s -simworkers %s exited %d", backend, workers, code)
			}
			if diff := firstDiff(seq, got); diff != "" {
				t.Errorf("-backend %s -simworkers %s stdout diverges:\n%s", backend, workers, diff)
			}
		}
	}
}

const tuneGoldenPath = "testdata/tune_quick.golden"

// TestTuneQuickGolden pins the quick tune sweep the same way: stdout
// (report + selection tables) against a committed golden, -jobs 1 versus
// -jobs 4, plus the persistent cache contract — the cache files written
// by both schedules are byte-identical, and a warm rerun over an
// existing cache simulates nothing, reprints the same tables, and leaves
// the cache bytes untouched.
//
// Regenerate after an intentional change with:
//
//	go test ./cmd/winograd-bench -run TestTuneQuickGolden -update
func TestTuneQuickGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("tune sweep simulates a dozen kernels")
	}
	dir := t.TempDir()
	cache1 := filepath.Join(dir, "jobs1.json")
	seq, _, code := runCapture(t, "-quick", "-budget", "6", "-jobs", "1", "-tunecache", cache1, "tune")
	if code != 0 {
		t.Fatalf("sequential tune exited %d", code)
	}
	if *update {
		if err := os.MkdirAll(filepath.Dir(tuneGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(tuneGoldenPath, []byte(seq), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", tuneGoldenPath, len(seq))
	}
	golden, err := os.ReadFile(tuneGoldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if diff := firstDiff(string(golden), seq); diff != "" {
		t.Errorf("-jobs 1 tune stdout diverges from %s:\n%s", tuneGoldenPath, diff)
	}

	cache4 := filepath.Join(dir, "jobs4.json")
	par, _, code := runCapture(t, "-quick", "-budget", "6", "-jobs", "4", "-tunecache", cache4, "tune")
	if code != 0 {
		t.Fatalf("concurrent tune exited %d", code)
	}
	if diff := firstDiff(seq, par); diff != "" {
		t.Errorf("-jobs 4 tune stdout diverges from -jobs 1:\n%s", diff)
	}
	b1, err := os.ReadFile(cache1)
	if err != nil {
		t.Fatal(err)
	}
	b4, err := os.ReadFile(cache4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b4) {
		t.Error("tune cache files differ between -jobs 1 and -jobs 4")
	}

	// Warm rerun against the jobs-1 cache: same stdout, no simulation
	// ("0 candidates simulated"), identical cache bytes afterwards.
	warm, warmErr, code := runCapture(t, "-quick", "-budget", "6", "-jobs", "4", "-tunecache", cache1, "tune")
	if code != 0 {
		t.Fatalf("warm tune exited %d", code)
	}
	if diff := firstDiff(seq, warm); diff != "" {
		t.Errorf("warm tune stdout diverges from cold:\n%s", diff)
	}
	if !strings.Contains(warmErr, "0 candidates simulated") {
		t.Errorf("warm run was not served from the cache: %q", warmErr)
	}
	bw, err := os.ReadFile(cache1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, bw) {
		t.Error("warm rerun rewrote the cache with different bytes")
	}
}

const calibrateGoldenPath = "testdata/calibrate.golden"

// TestCalibrateGolden pins the calibrate subcommand the same way: the
// full all-device stdout (probe reports plus the analytic per-layer
// selection tables) against a committed golden, -jobs 1 versus -jobs 4,
// and the same bytes from both execution backends. A probe drifting
// from a device file fails the run outright (exit 1), so this is the
// repo-level anti-drift oracle wired into the CLI.
//
// Regenerate after an intentional change with:
//
//	go test ./cmd/winograd-bench -run TestCalibrateGolden -update
func TestCalibrateGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probes every registered device")
	}
	seq, _, code := runCapture(t, "-jobs", "1", "calibrate")
	if code != 0 {
		t.Fatalf("sequential calibrate exited %d", code)
	}
	if *update {
		if err := os.MkdirAll(filepath.Dir(calibrateGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(calibrateGoldenPath, []byte(seq), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", calibrateGoldenPath, len(seq))
	}
	golden, err := os.ReadFile(calibrateGoldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if diff := firstDiff(string(golden), seq); diff != "" {
		t.Errorf("-jobs 1 calibrate stdout diverges from %s:\n%s", calibrateGoldenPath, diff)
	}

	par, _, code := runCapture(t, "-jobs", "4", "calibrate")
	if code != 0 {
		t.Fatalf("concurrent calibrate exited %d", code)
	}
	if diff := firstDiff(seq, par); diff != "" {
		t.Errorf("-jobs 4 calibrate stdout diverges from -jobs 1:\n%s", diff)
	}

	sw, _, code := runCapture(t, "-jobs", "4", "-backend", "switch", "calibrate")
	if code != 0 {
		t.Fatalf("switch-backend calibrate exited %d", code)
	}
	if diff := firstDiff(seq, sw); diff != "" {
		t.Errorf("-backend switch calibrate stdout diverges:\n%s", diff)
	}

	// A single explicit -device narrows the run to that device's section
	// of the full report.
	one, _, code := runCapture(t, "-device", "K20X", "calibrate")
	if code != 0 {
		t.Fatalf("single-device calibrate exited %d", code)
	}
	if !strings.Contains(seq, one) {
		t.Error("-device k20x output is not a slice of the all-device output")
	}
	if strings.Contains(one, "V100") {
		t.Error("-device k20x output mentions V100")
	}

	// Unknown devices exit 2 and list the registry.
	_, errOut, code := runCapture(t, "-device", "gtx480", "calibrate")
	if code != 2 {
		t.Fatalf("unknown device: code=%d", code)
	}
	for _, want := range []string{"unknown device", "k20x", "v100"} {
		if !strings.Contains(errOut, want) {
			t.Errorf("stderr %q missing %q", errOut, want)
		}
	}
}

// firstDiff renders the first line-level difference between two texts
// (empty when identical), keeping failure output readable.
func firstDiff(want, got string) string {
	if want == got {
		return ""
	}
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d, got %d", len(wl), len(gl))
}

// TestListAndUnknown covers the no-argument listing and the unknown-id
// error path without running any simulation.
func TestListAndUnknown(t *testing.T) {
	out, _, code := runCapture(t)
	if code != 0 || !strings.Contains(out, "experiments:") || !strings.Contains(out, "all        run everything") {
		t.Fatalf("listing: code=%d out=%q", code, out)
	}
	out, errOut, code := runCapture(t, "nope", "table1", "nope", "alsobad")
	if code != 2 {
		t.Fatalf("unknown ids: code=%d", code)
	}
	if out != "" {
		t.Fatalf("unknown ids wrote to stdout: %q", out)
	}
	for _, want := range []string{`unknown experiment "nope"`, `unknown experiment "alsobad"`} {
		if !strings.Contains(errOut, want) {
			t.Fatalf("stderr %q missing %q", errOut, want)
		}
	}
	if strings.Count(errOut, `"nope"`) != 1 {
		t.Fatalf("duplicate unknown id reported twice: %q", errOut)
	}
}
