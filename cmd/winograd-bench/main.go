// winograd-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	winograd-bench [-waves N] [-quick] [-markdown] [experiment ...]
//
// With no arguments it lists the available experiments; "all" runs the
// whole evaluation in paper order.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	waves := flag.Int("waves", 4, "occupancy-waves to simulate per sample")
	quick := flag.Bool("quick", false, "reduced layer/batch sweep")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavoured markdown")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		fmt.Println("experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		fmt.Println("  all        run everything in paper order")
		return
	}

	ctx := bench.NewCtx()
	ctx.Waves = *waves
	ctx.Quick = *quick

	var todo []bench.Experiment
	for _, id := range args {
		if id == "all" {
			todo = bench.All()
			break
		}
		e, ok := bench.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (run with no arguments for the list)\n", id)
			os.Exit(2)
		}
		todo = append(todo, e)
	}

	for _, e := range todo {
		start := time.Now()
		t, err := e.Run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t.Format())
		}
		fmt.Printf("(%s took %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
