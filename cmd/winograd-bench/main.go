// winograd-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	winograd-bench [-waves N] [-quick] [-markdown] [-jobs N] [-timings] [experiment ...]
//
// With no arguments it lists the available experiments; "all" runs the
// whole evaluation in paper order. Experiment ids may be repeated and
// mixed with "all" — the selection is deduplicated and always runs in
// paper order. Sample simulation is scheduled across -jobs workers with
// cross-experiment deduplication; tables go to stdout (byte-identical
// for any -jobs value), timings and scheduling stats to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
)

func main() {
	waves := flag.Int("waves", 4, "occupancy-waves to simulate per sample")
	quick := flag.Bool("quick", false, "reduced layer/batch sweep")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavoured markdown")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent simulation jobs (1 = sequential)")
	timings := flag.Bool("timings", false, "print per-job timing detail to stderr")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		fmt.Println("experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		fmt.Println("  all        run everything in paper order")
		return
	}

	// Resolve the selection: "all" may be mixed with explicit ids,
	// duplicates collapse, and the run order is always paper order.
	// Unknown ids are all reported before exiting non-zero.
	selected := map[string]bool{}
	runAll := false
	var unknown []string
	seenUnknown := map[string]bool{}
	for _, id := range args {
		if id == "all" {
			runAll = true
			continue
		}
		if _, ok := bench.Get(id); !ok {
			if !seenUnknown[id] {
				seenUnknown[id] = true
				unknown = append(unknown, id)
			}
			continue
		}
		selected[id] = true
	}
	if len(unknown) > 0 {
		for _, id := range unknown {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
		}
		fmt.Fprintln(os.Stderr, "run with no arguments for the list")
		os.Exit(2)
	}
	var todo []bench.Experiment
	for _, e := range bench.All() {
		if runAll || selected[e.ID] {
			todo = append(todo, e)
		}
	}

	ctx := bench.NewCtx()
	ctx.Waves = *waves
	ctx.Quick = *quick

	runner := &bench.Runner{Ctx: ctx, Workers: *jobs}
	start := time.Now()
	results, stats, err := runner.Run(todo)
	if err != nil {
		fmt.Fprintf(os.Stderr, "winograd-bench: %v\n", err)
		os.Exit(1)
	}

	for _, res := range results {
		if *markdown {
			fmt.Println(res.Table.Markdown())
		} else {
			fmt.Println(res.Table.Format())
		}
		fmt.Fprintf(os.Stderr, "(%s rendered in %v)\n", res.Experiment.ID, res.Elapsed.Round(time.Millisecond))
	}

	fmt.Fprintf(os.Stderr, "simulated %d unique jobs (%d requested, %d deduplicated across experiments) in %v on %d workers; total %v\n",
		stats.Unique, stats.Requested, stats.Requested-stats.Unique,
		stats.Prefetch.Round(time.Millisecond), stats.Workers,
		time.Since(start).Round(time.Millisecond))
	if *timings {
		for _, jt := range stats.SlowestJobs(len(stats.Jobs)) {
			fmt.Fprintf(os.Stderr, "  %8v  %s\n", jt.Elapsed.Round(time.Millisecond), jt.Key)
		}
	}
}
