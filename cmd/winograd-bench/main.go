// winograd-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	winograd-bench [-waves N] [-quick] [-markdown] [-jobs N] [-timings] [-prof] [experiment ...]
//	winograd-bench [-waves N] [-quick] [-jobs N] [-budget N] [-store PATH] [-shard i/N] [-storeverify] [-tunecache PATH] [-device D] tune
//	winograd-bench [-jobs N] [-markdown] [-backend B] [-device D] calibrate
//	winograd-bench [-requests N] [-seed S] [-jobs N] [-waves N] [-device D] [-store PATH] [-serveexec K] [-listen ADDR] serve
//	winograd-bench store merge -o OUT IN...
//	winograd-bench store ls PATH...
//	winograd-bench store verify PATH...
//
// With no arguments it lists the available experiments; "all" runs the
// whole evaluation in paper order. Experiment ids may be repeated and
// mixed with "all" — the selection is deduplicated and always runs in
// paper order. Sample simulation is scheduled across -jobs workers with
// cross-experiment deduplication; tables go to stdout (byte-identical
// for any -jobs value), timings and scheduling stats to stderr.
//
// The `tune` subcommand searches the kernels.Config knob space per
// ResNet layer on the simulator (statically pruned, budgeted by
// -budget), persists measurements to the content-addressed experiment
// store at -store (and/or the legacy tune/v1 -tunecache file), and
// prints the tuned-vs-default report and per-layer algorithm selection.
// With -shard i/N it measures only its deterministic partition of the
// pruned lattice and writes a partial store; `store merge` over all N
// partials reproduces the single-process store byte for byte.
//
// The `store` subcommand operates on store/v1 files: `merge` unions
// partial stores (loud on conflicts), `ls` lists entries, and `verify`
// exits non-zero on any quarantined, conflicting, or (for tune-mode
// entries) round-trip-failing entry.
//
// The `serve` subcommand is the batched inference service's harness: by
// default it runs the deterministic load generator (virtual-time
// simulation of the batching policy with sampled real cudart.Forward
// executions) and prints per-shape latency percentiles, batch-size
// occupancy, and execution checksums — byte-identical for a fixed -seed
// whatever -jobs is. With -listen it serves POST /v1/infer for real.
//
// The `calibrate` subcommand runs the internal/microbench probe suite
// against every registered device file (or just -device when given) and
// prints, per device, the probe report plus the per-layer algorithm
// selection implied by the analytic model — the standing check that the
// device specs and the simulator still agree.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/gpu"
	"repro/internal/kernels"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI behind an injectable argv and output streams, so
// the golden-table test can assert on exact stdout bytes. Tables go to
// stdout only; everything timing-dependent goes to stderr.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("winograd-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	waves := fs.Int("waves", 4, "occupancy-waves to simulate per sample")
	quick := fs.Bool("quick", false, "reduced layer/batch sweep")
	markdown := fs.Bool("markdown", false, "emit GitHub-flavoured markdown")
	jobs := fs.Int("jobs", runtime.GOMAXPROCS(0), "concurrent simulation jobs (1 = sequential)")
	timings := fs.Bool("timings", false, "print per-job timing detail to stderr")
	profile := fs.Bool("prof", false, "profile every sample and add stall-breakdown columns where tables support them")
	backend := fs.String("backend", "threaded", "simulator execution backend (threaded or switch; bit-identical results)")
	simWorkers := fs.Int("simworkers", 0, "worker goroutines per sharded full-grid simulation (0 = GOMAXPROCS)")
	budget := fs.Int("budget", 12, "tune: max simulated candidate configs per layer (paper default always included)")
	tuneCache := fs.String("tunecache", "", "tune: path of the legacy tune/v1 JSON cache (imported into the store, kept updated)")
	storePath := fs.String("store", "", "tune: path of the content-addressed store/v1 experiment store (empty = in-memory only)")
	storeVerify := fs.Bool("storeverify", false, "tune: force the full key round-trip check on every store hit")
	shard := fs.String("shard", "", "tune: deterministic lattice partition i/N; requires -store, suppresses tables")
	device := fs.String("device", "rtx2070", "tune/calibrate/serve: registered device name (see `winograd-bench` listing)")
	requests := fs.Int("requests", 4000, "serve: load-generator arrivals")
	seed := fs.Uint64("seed", 42, "serve: load-generator seed (the report is a pure function of seed and config)")
	serveExec := fs.Int("serveexec", 23, "serve: really execute every K-th dispatched batch (<0 disables)")
	listen := fs.String("listen", "", "serve: serve POST /v1/infer at this address instead of generating load")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	deviceSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "device" {
			deviceSet = true
		}
	})
	be, err := gpu.ParseBackend(*backend)
	if err != nil {
		fmt.Fprintf(stderr, "winograd-bench: %v\n", err)
		return 2
	}

	args := fs.Args()
	if len(args) == 0 {
		fmt.Fprintln(stdout, "experiments:")
		for _, e := range bench.All() {
			fmt.Fprintf(stdout, "  %-10s %s\n", e.ID, e.Title)
		}
		fmt.Fprintln(stdout, "  all        run everything in paper order")
		fmt.Fprintln(stdout, "  tune       autotune per-layer configs and algorithm selection")
		fmt.Fprintln(stdout, "  serve      batched inference service: load generation or -listen HTTP serving")
		fmt.Fprintln(stdout, "  calibrate  probe every registered device spec against the simulator")
		fmt.Fprintln(stdout, "  store      merge/ls/verify content-addressed experiment stores")
		fmt.Fprintf(stdout, "devices: %s\n", strings.Join(gpu.DeviceNames(), ", "))
		return 0
	}

	// `tune` is a subcommand, not an experiment: it owns its own sweep,
	// cache, and tables, so it cannot be mixed with experiment ids.
	if len(args) == 1 && args[0] == "tune" {
		return runTune(tuneOpts{waves: *waves, quick: *quick, markdown: *markdown,
			jobs: *jobs, budget: *budget, cache: *tuneCache, storePath: *storePath,
			storeVerify: *storeVerify, shard: *shard, device: *device}, stdout, stderr)
	}

	// `serve` is the inference-service harness: load generation by
	// default, a live HTTP server with -listen.
	if len(args) == 1 && args[0] == "serve" {
		return runServe(serveOpts{requests: *requests, seed: *seed, jobs: *jobs,
			markdown: *markdown, waves: *waves, device: *device,
			storePath: *storePath, storeVerify: *storeVerify,
			execEvery: *serveExec, listen: *listen}, stdout, stderr)
	}

	// `store` operates on store/v1 files: merge, ls, verify.
	if len(args) >= 1 && args[0] == "store" {
		return runStore(args[1:], stdout, stderr)
	}

	// `calibrate` is likewise its own subcommand. -device defaults to
	// "every registered device"; it narrows only when set explicitly.
	if len(args) == 1 && args[0] == "calibrate" {
		o := calibrateOpts{jobs: *jobs, markdown: *markdown, backend: be}
		if deviceSet {
			o.device = *device
		}
		return runCalibrate(o, stdout, stderr)
	}

	// Resolve the selection: "all" may be mixed with explicit ids,
	// duplicates collapse, and the run order is always paper order.
	// Unknown ids are all reported before exiting non-zero.
	selected := map[string]bool{}
	runAll := false
	var unknown []string
	seenUnknown := map[string]bool{}
	for _, id := range args {
		if id == "all" {
			runAll = true
			continue
		}
		if _, ok := bench.Get(id); !ok {
			if !seenUnknown[id] {
				seenUnknown[id] = true
				unknown = append(unknown, id)
			}
			continue
		}
		selected[id] = true
	}
	if len(unknown) > 0 {
		for _, id := range unknown {
			fmt.Fprintf(stderr, "unknown experiment %q\n", id)
		}
		fmt.Fprintln(stderr, "run with no arguments for the list")
		return 2
	}
	var todo []bench.Experiment
	for _, e := range bench.All() {
		if runAll || selected[e.ID] {
			todo = append(todo, e)
		}
	}

	ctx := bench.NewCtx()
	ctx.Waves = *waves
	ctx.Quick = *quick
	ctx.Profile = *profile
	ctx.Sim = kernels.SimOpts{Backend: be, Workers: *simWorkers}

	runner := &bench.Runner{Ctx: ctx, Workers: *jobs}
	start := time.Now()
	results, stats, err := runner.Run(todo)
	if err != nil {
		fmt.Fprintf(stderr, "winograd-bench: %v\n", err)
		return 1
	}

	for _, res := range results {
		if *markdown {
			fmt.Fprintln(stdout, res.Table.Markdown())
		} else {
			fmt.Fprintln(stdout, res.Table.Format())
		}
		fmt.Fprintf(stderr, "(%s rendered in %v)\n", res.Experiment.ID, res.Elapsed.Round(time.Millisecond))
	}

	fmt.Fprintf(stderr, "simulated %d unique jobs (%d requested, %d deduplicated across experiments) in %v on %d workers; total %v\n",
		stats.Unique, stats.Requested, stats.Requested-stats.Unique,
		stats.Prefetch.Round(time.Millisecond), stats.Workers,
		time.Since(start).Round(time.Millisecond))
	if *timings {
		for _, jt := range stats.SlowestJobs(len(stats.Jobs)) {
			fmt.Fprintf(stderr, "  %8v  %s\n", jt.Elapsed.Round(time.Millisecond), jt.Key)
		}
	}
	return 0
}
