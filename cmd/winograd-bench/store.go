package main

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"repro/internal/store"
	"repro/internal/tune"
)

// runStore is the `winograd-bench store` subcommand family:
//
//	winograd-bench store merge -o OUT IN...   combine partial stores
//	winograd-bench store ls PATH...           list entries, sorted by key
//	winograd-bench store verify PATH...       full integrity gate
//
// merge unions shard outputs: commutative, idempotent, and loud on
// divergence (the same key with different payloads exits 1 naming both
// files), so N disjoint tuning shards merge into bytes identical to the
// single-process run. Corrupt entries in inputs are quarantined with a
// warning, matching tune's cold-cache policy.
//
// verify is the strict mode CI uses as a store-integrity gate: any
// quarantined entry, any cross-file conflict, and any tune-mode payload
// failing the full key round-trip (config/shape canonicalization,
// kernel-source and device-spec rehashing) exits non-zero.
func runStore(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "winograd-bench store: want a verb: merge, ls or verify")
		return 2
	}
	verb, rest := args[0], args[1:]
	switch verb {
	case "merge":
		return runStoreMerge(rest, stderr)
	case "ls":
		return runStoreLs(rest, stdout, stderr)
	case "verify":
		return runStoreVerify(rest, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "winograd-bench store: unknown verb %q (want merge, ls or verify)\n", verb)
		return 2
	}
}

func runStoreMerge(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("winograd-bench store merge", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "path of the merged store (required)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	inputs := fs.Args()
	if *out == "" || len(inputs) == 0 {
		fmt.Fprintln(stderr, "winograd-bench store merge: usage: store merge -o OUT IN...")
		return 2
	}
	merged := store.New()
	mergedLabel := "merged"
	for _, path := range inputs {
		s, rep := store.Load(path)
		for _, w := range rep.Warnings {
			fmt.Fprintln(stderr, w)
		}
		if err := merged.Merge(s, mergedLabel, path); err != nil {
			fmt.Fprintf(stderr, "winograd-bench store merge: %v\n", err)
			return 1
		}
		// After the first input the accumulator is the union so far;
		// label it by provenance for readable conflict messages.
		mergedLabel = mergedLabel + "+" + path
	}
	if err := merged.Save(*out); err != nil {
		fmt.Fprintf(stderr, "winograd-bench store merge: %v\n", err)
		return 1
	}
	return 0
}

func runStoreLs(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "winograd-bench store ls: usage: store ls PATH...")
		return 2
	}
	for _, path := range args {
		s, rep := store.Load(path)
		for _, w := range rep.Warnings {
			fmt.Fprintln(stderr, w)
		}
		fmt.Fprintf(stdout, "%s: %d entries\n", path, s.Len())
		for _, e := range s.Entries() {
			fmt.Fprintf(stdout, "  %s  %s\n", e.Hash, e.Key)
		}
	}
	return 0
}

func runStoreVerify(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "winograd-bench store verify: usage: store verify PATH...")
		return 2
	}
	bad := 0
	all := store.New()
	for _, path := range args {
		s, rep := store.Load(path)
		for _, w := range rep.Warnings {
			fmt.Fprintln(stderr, w)
		}
		bad += rep.Quarantined
		if len(rep.Warnings) > rep.Quarantined {
			// Whole-file problems (corrupt JSON, stale schema) carry no
			// per-entry count but must still fail the gate.
			bad++
		}
		for _, e := range s.Entries() {
			if !strings.HasPrefix(e.Mode, "tune/") {
				continue
			}
			if err := tune.VerifyEntry(e); err != nil {
				fmt.Fprintf(stderr, "%s: %v\n", path, err)
				bad++
			}
		}
		if err := all.Merge(s, "verified set", path); err != nil {
			fmt.Fprintf(stderr, "winograd-bench store verify: %v\n", err)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "winograd-bench store verify: %d problem(s) across %d file(s)\n", bad, len(args))
		return 1
	}
	fmt.Fprintf(stdout, "verified %d file(s): %d entries, no quarantines, no conflicts\n", len(args), all.Len())
	return 0
}
