package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/store"
)

const storeGoldenPath = "testdata/store_quick.golden"

// TestTuneStoreGolden pins the experiment store the quick tune sweep
// writes — the bytes CI's sharded jobs must reproduce. A single-process
// run's store is the golden; 1-, 2- and 3-way sharded runs merged
// through the `store merge` CLI must match it byte for byte, a warm
// rerun over it must simulate nothing, and `store verify` must pass it
// with -storeverify semantics.
//
// Regenerate after an intentional change with:
//
//	go test ./cmd/winograd-bench -run TestTuneStoreGolden -update
func TestTuneStoreGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("tune sweep simulates a dozen kernels per shard set")
	}
	dir := t.TempDir()

	single := filepath.Join(dir, "single.json")
	out, _, code := runCapture(t, "-quick", "-budget", "6", "-jobs", "4", "-store", single, "tune")
	if code != 0 {
		t.Fatalf("single-process tune exited %d", code)
	}
	if out == "" {
		t.Fatal("unsharded tune printed no tables")
	}
	got, err := os.ReadFile(single)
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.MkdirAll(filepath.Dir(storeGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(storeGoldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", storeGoldenPath, len(got))
	}
	golden, err := os.ReadFile(storeGoldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(golden, got) {
		t.Errorf("single-process store diverges from %s:\n%s",
			storeGoldenPath, firstDiff(string(golden), string(got)))
	}

	// Warm rerun over the store: same tables, zero simulations, bytes
	// untouched — including under the forced -storeverify round-trip.
	for _, extra := range [][]string{nil, {"-storeverify"}} {
		argv := append([]string{"-quick", "-budget", "6", "-jobs", "4", "-store", single}, extra...)
		warm, warmErr, code := runCapture(t, append(argv, "tune")...)
		if code != 0 {
			t.Fatalf("warm tune %v exited %d", extra, code)
		}
		if diff := firstDiff(out, warm); diff != "" {
			t.Errorf("warm tune %v stdout diverges from cold:\n%s", extra, diff)
		}
		if !strings.Contains(warmErr, "0 candidates simulated") {
			t.Errorf("warm run %v was not served from the store: %q", extra, warmErr)
		}
	}
	if after, _ := os.ReadFile(single); !bytes.Equal(after, got) {
		t.Error("warm reruns rewrote the store with different bytes")
	}

	// Sharded runs print no tables and cover the lattice disjointly; the
	// CLI merge of each shard set reproduces the golden byte for byte.
	for n := 1; n <= 3; n++ {
		var shards []string
		for i := 1; i <= n; i++ {
			path := filepath.Join(dir, fmt.Sprintf("shard%d_%d.json", n, i))
			sOut, sErr, code := runCapture(t, "-quick", "-budget", "6", "-jobs", "4",
				"-shard", fmt.Sprintf("%d/%d", i, n), "-store", path, "tune")
			if code != 0 {
				t.Fatalf("shard %d/%d exited %d: %s", i, n, code, sErr)
			}
			if n > 1 && sOut != "" {
				t.Fatalf("shard %d/%d printed tables:\n%s", i, n, sOut)
			}
			shards = append(shards, path)
		}
		merged := filepath.Join(dir, fmt.Sprintf("merged%d.json", n))
		argv := append([]string{"store", "merge", "-o", merged}, shards...)
		if _, errOut, code := runCapture(t, argv...); code != 0 {
			t.Fatalf("store merge of %d shards exited %d: %s", n, code, errOut)
		}
		mb, err := os.ReadFile(merged)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(mb, got) {
			t.Errorf("%d-way sharded merge diverges from the single-process store:\n%s",
				n, firstDiff(string(got), string(mb)))
		}
	}

	// verify passes the golden store; ls lists every entry.
	vOut, vErr, code := runCapture(t, "store", "verify", single)
	if code != 0 {
		t.Fatalf("store verify exited %d: %s", code, vErr)
	}
	if !strings.Contains(vOut, "no quarantines, no conflicts") {
		t.Errorf("verify output: %q", vOut)
	}
	st, _ := store.Load(single)
	lsOut, _, code := runCapture(t, "store", "ls", single)
	if code != 0 {
		t.Fatalf("store ls exited %d", code)
	}
	if want := strings.Count(lsOut, "\n") - 1; want != st.Len() {
		t.Errorf("ls listed %d entries, store holds %d", want, st.Len())
	}
}

// TestStoreCLIFailures covers the loud paths: merge conflicts name both
// file provenances and exit 1, verify flags quarantined and tampered
// entries non-zero, and shard misuse exits 2.
func TestStoreCLIFailures(t *testing.T) {
	dir := t.TempDir()
	key := store.Key{Device: "d", DeviceHash: "h", KernelHash: "k",
		Problem: "p", Mode: "test"}
	put := func(t *testing.T, path string, v any) {
		t.Helper()
		s := store.New()
		if err := s.Put(key, v); err != nil {
			t.Fatal(err)
		}
		if err := s.Save(path); err != nil {
			t.Fatal(err)
		}
	}
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	put(t, a, map[string]int{"seconds": 1})
	put(t, b, map[string]int{"seconds": 2})

	// Divergent payloads under the same key: exit 1, both files named.
	merged := filepath.Join(dir, "merged.json")
	_, errOut, code := runCapture(t, "store", "merge", "-o", merged, a, b)
	if code != 1 {
		t.Fatalf("conflicting merge exited %d", code)
	}
	if !strings.Contains(errOut, a) || !strings.Contains(errOut, b) {
		t.Errorf("conflict error does not name both files: %q", errOut)
	}
	if _, err := os.Stat(merged); !os.IsNotExist(err) {
		t.Error("conflicting merge still wrote an output store")
	}

	// The same two files fail verify for the same reason.
	if _, _, code := runCapture(t, "store", "verify", a, b); code != 1 {
		t.Fatalf("conflicting verify exited %d", code)
	}
	// Each alone is fine.
	if _, _, code := runCapture(t, "store", "verify", a); code != 0 {
		t.Fatalf("clean verify exited %d", code)
	}

	// Tamper with a payload byte: load quarantines, verify exits 1.
	raw, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(raw, []byte(`"seconds": 1`), []byte(`"seconds": 9`), 1)
	if bytes.Equal(raw, tampered) {
		t.Fatal("tamper target not found")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	_, errOut, code = runCapture(t, "store", "verify", bad)
	if code != 1 || !strings.Contains(errOut, "quarantined") {
		t.Fatalf("tampered verify: code=%d stderr=%q", code, errOut)
	}

	// A tune-mode entry failing the full round-trip fails verify even
	// though its content hash is self-consistent.
	tuneBad := filepath.Join(dir, "tunebad.json")
	tk := key
	tk.Mode = "tune/waves=4"
	s := store.New()
	if err := s.Put(tk, json.RawMessage(`{"device":"d","waves":4}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(tuneBad); err != nil {
		t.Fatal(err)
	}
	if _, _, code := runCapture(t, "store", "verify", tuneBad); code != 1 {
		t.Fatalf("round-trip-failing verify exited %d", code)
	}

	// Shard misuse: no -store, or combined with the legacy cache.
	if _, errOut, code := runCapture(t, "-shard", "1/2", "tune"); code != 2 ||
		!strings.Contains(errOut, "-shard requires -store") {
		t.Fatalf("shard without store: code=%d stderr=%q", code, errOut)
	}
	if _, errOut, code := runCapture(t, "-shard", "1/2", "-store", filepath.Join(dir, "s.json"),
		"-tunecache", filepath.Join(dir, "c.json"), "tune"); code != 2 ||
		!strings.Contains(errOut, "legacy") {
		t.Fatalf("shard with tunecache: code=%d stderr=%q", code, errOut)
	}
	if _, _, code := runCapture(t, "-shard", "9/2", "-store", filepath.Join(dir, "s.json"), "tune"); code != 2 {
		t.Fatalf("out-of-range shard exited %d", code)
	}

	// Unknown store verbs and empty argument lists exit 2.
	if _, _, code := runCapture(t, "store"); code != 2 {
		t.Fatal("bare store subcommand accepted")
	}
	if _, _, code := runCapture(t, "store", "frobnicate"); code != 2 {
		t.Fatal("unknown store verb accepted")
	}
	if _, _, code := runCapture(t, "store", "merge", "-o", ""); code != 2 {
		t.Fatal("merge without inputs accepted")
	}
}
