package main

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/gpu"
	"repro/internal/serve"
	"repro/internal/store"
)

// serveOpts carries the serve-subcommand flags out of run's flag set.
type serveOpts struct {
	requests    int
	seed        uint64
	jobs        int
	markdown    bool
	waves       int
	device      string
	storePath   string
	storeVerify bool
	execEvery   int
	listen      string
}

// runServe is the `winograd-bench serve` subcommand. By default it runs
// the deterministic load generator against the demo model — the phased
// arrival stream that exercises every batch-size sweet spot, the
// padded-partial deadline fallback, and a thousand-plus in-flight
// requests — and prints the report (latency percentiles, batch
// occupancy, sampled real executions) to stdout, byte-identical for a
// fixed -seed across runs and -jobs counts. With -store the algorithm
// selection warms from the content-addressed tune store; otherwise the
// analytic model stands in for cold shapes.
//
// With -listen the real batched server starts instead, serving POST
// /v1/infer until the process is killed.
func runServe(o serveOpts, stdout, stderr io.Writer) int {
	dev, err := gpu.DeviceByName(o.device)
	if err != nil {
		fmt.Fprintf(stderr, "winograd-bench serve: %v\n", err)
		return 2
	}
	sel := serve.NewTuneSelector(o.waves)
	if o.storePath != "" {
		st, rep := store.Load(o.storePath)
		for _, w := range rep.Warnings {
			fmt.Fprintln(stderr, w)
		}
		n, warns := sel.WarmFromStore(st, o.storeVerify)
		for _, w := range warns {
			fmt.Fprintln(stderr, w)
		}
		fmt.Fprintf(stderr, "warmed %d tune measurements from %s\n", n, o.storePath)
	}

	if o.listen != "" {
		model := serve.DemoModel(o.seed)
		s, err := serve.NewServer(serve.Config{
			Model:    model,
			Selector: sel,
			Devices:  []gpu.Device{dev},
		})
		if err != nil {
			fmt.Fprintf(stderr, "winograd-bench serve: %v\n", err)
			return 1
		}
		defer s.Close()
		fmt.Fprintf(stderr, "serving layers %v on %s at %s (POST /v1/infer)\n",
			model.LayerNames(), dev.Name, o.listen)
		if err := http.ListenAndServe(o.listen, s.Handler()); err != nil {
			fmt.Fprintf(stderr, "winograd-bench serve: %v\n", err)
			return 1
		}
		return 0
	}

	start := time.Now()
	rep, err := serve.Generate(serve.LoadConfig{
		Seed:      o.seed,
		Requests:  o.requests,
		Devices:   []gpu.Device{dev},
		Selector:  sel,
		ExecEvery: o.execEvery,
		Jobs:      o.jobs,
	})
	if err != nil {
		fmt.Fprintf(stderr, "winograd-bench serve: %v\n", err)
		return 1
	}
	if o.markdown {
		fmt.Fprint(stdout, rep.Markdown())
	} else {
		fmt.Fprint(stdout, rep.Format())
	}
	fmt.Fprintf(stderr, "simulated %d arrivals (%d rejected), peak in-flight %d, %d batches (%d real) in %v on %d workers\n",
		rep.Total, rep.Rejected, rep.MaxInFlight, sumBatches(rep.Batches), rep.Sampled,
		time.Since(start).Round(time.Millisecond), o.jobs)
	return 0
}

func sumBatches(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
